package fault

import (
	"fmt"
	"net"
	"sync"
	"time"

	"itscs/internal/stat"
)

// ConnPlan parameterizes a flaky connection. The zero value is a clean
// pass-through.
type ConnPlan struct {
	// Seed drives the probabilistic decisions.
	Seed int64
	// CutAfterBytes closes the connection once this many bytes have been
	// written through it — a mid-frame cut when it lands inside a report
	// line. Zero disables.
	CutAfterBytes int64
	// PDropWrite is the probability a write is silently swallowed: the
	// caller sees success, the peer sees a hole in the stream (the torn
	// upload a dying radio link produces).
	PDropWrite float64
	// StallEvery inserts Stall before every Nth write, modeling a client
	// that freezes mid-stream (the idle-timeout trigger). Zero disables.
	StallEvery int
	Stall      time.Duration
}

// FlakyConn wraps a net.Conn with seeded stalls, mid-frame cuts, and
// dropped writes. Reads pass through untouched: the faults model the
// participant's uplink, which is where mobile crowdsensing loses data.
type FlakyConn struct {
	net.Conn

	mu      sync.Mutex
	plan    ConnPlan
	rng     *stat.RNG
	written int64
	writes  int
	cut     bool
	drops   int
}

// WrapConn applies the plan to a connection.
func WrapConn(c net.Conn, plan ConnPlan) *FlakyConn {
	return &FlakyConn{Conn: c, plan: plan, rng: stat.NewRNG(plan.Seed).Child("conn")}
}

// Write applies the fault schedule, then forwards whatever survives.
func (c *FlakyConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	c.writes++
	stall := c.plan.StallEvery > 0 && c.writes%c.plan.StallEvery == 0
	drop := c.plan.PDropWrite > 0 && c.rng.Bool(c.plan.PDropWrite)
	var cutAt int64 = -1
	if c.plan.CutAfterBytes > 0 && !c.cut && c.written+int64(len(p)) > c.plan.CutAfterBytes {
		cutAt = c.plan.CutAfterBytes - c.written
		c.cut = true
	}
	c.written += int64(len(p))
	if drop {
		c.drops++
	}
	c.mu.Unlock()

	if stall && c.plan.Stall > 0 {
		time.Sleep(c.plan.Stall)
	}
	if cutAt >= 0 {
		// Deliver the bytes up to the cut, then sever the transport: the
		// peer sees a partial frame followed by EOF.
		n := 0
		if cutAt > 0 {
			n, _ = c.Conn.Write(p[:cutAt])
		}
		_ = c.Conn.Close()
		return n, fmt.Errorf("%w: connection cut after %d bytes", ErrInjected, c.plan.CutAfterBytes)
	}
	if drop {
		return len(p), nil // swallowed: caller believes it was sent
	}
	return c.Conn.Write(p)
}

// Drops reports how many writes were silently swallowed.
func (c *FlakyConn) Drops() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drops
}

// Cut reports whether the connection has been severed by the plan.
func (c *FlakyConn) Cut() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cut
}

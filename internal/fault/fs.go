package fault

import (
	"io"
	"os"
)

// FS is the filesystem seam the durability layer writes through. It mirrors
// the handful of os functions the WAL and checkpoint code use; *os.File
// satisfies File directly, so the OS implementation is a thin veneer.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	Open(name string) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	Stat(name string) (os.FileInfo, error)
	ReadDir(name string) ([]os.DirEntry, error)
}

// File is the open-file seam: the subset of *os.File the durability layer
// touches.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	Name() string
	Stat() (os.FileInfo, error)
	Sync() error
}

// OS returns the pass-through filesystem, the production default.
func OS() FS { return osFS{} }

type osFS struct{}

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (osFS) Stat(name string) (os.FileInfo, error)        { return os.Stat(name) }
func (osFS) ReadDir(name string) ([]os.DirEntry, error)   { return os.ReadDir(name) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (osFS) Open(name string) (File, error)               { return os.Open(name) }
func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

// Inject wraps base so every mutating operation consults the injector.
// Reads are never failed: the harness models a machine that loses writes,
// not one that corrupts reads (corruption is exercised separately by
// flipping bytes on disk between lives).
func Inject(base FS, in *Injector) FS { return &injectFS{base: base, in: in} }

type injectFS struct {
	base FS
	in   *Injector
}

func (f *injectFS) MkdirAll(path string, perm os.FileMode) error { return f.base.MkdirAll(path, perm) }
func (f *injectFS) Stat(name string) (os.FileInfo, error)        { return f.base.Stat(name) }
func (f *injectFS) ReadDir(name string) ([]os.DirEntry, error)   { return f.base.ReadDir(name) }

func (f *injectFS) Rename(oldpath, newpath string) error {
	if err, _ := f.in.decide(OpRename, newpath, 0); err != nil {
		return err
	}
	return f.base.Rename(oldpath, newpath)
}

func (f *injectFS) Remove(name string) error {
	if err, _ := f.in.decide(OpRemove, name, 0); err != nil {
		return err
	}
	return f.base.Remove(name)
}

func (f *injectFS) Truncate(name string, size int64) error {
	if err, _ := f.in.decide(OpTruncate, name, 0); err != nil {
		return err
	}
	return f.base.Truncate(name, size)
}

func (f *injectFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE) != 0 {
		if err, _ := f.in.decide(OpOpen, name, 0); err != nil {
			return nil, err
		}
	}
	file, err := f.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: file, in: f.in}, nil
}

func (f *injectFS) Open(name string) (File, error) {
	file, err := f.base.Open(name)
	if err != nil {
		return nil, err
	}
	// Read-only handles skip injection but stay wrapped for symmetry.
	return file, nil
}

func (f *injectFS) CreateTemp(dir, pattern string) (File, error) {
	if err, _ := f.in.decide(OpCreate, dir, 0); err != nil {
		return nil, err
	}
	file, err := f.base.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectFile{File: file, in: f.in}, nil
}

// injectFile intercepts the mutating half of a writable handle.
type injectFile struct {
	File
	in *Injector
}

func (f *injectFile) Write(p []byte) (int, error) {
	err, keep := f.in.decide(OpWrite, f.Name(), len(p))
	if err != nil {
		// A torn write persists a seeded prefix before failing — the
		// on-disk state a crash mid-write leaves behind.
		if keep > 0 {
			if n, werr := f.File.Write(p[:keep]); werr != nil {
				return n, werr
			}
		}
		return keep, err
	}
	return f.File.Write(p)
}

func (f *injectFile) Sync() error {
	if err, _ := f.in.decide(OpSync, f.Name(), 0); err != nil {
		return err
	}
	return f.File.Sync()
}

// Package fault provides the seams the deterministic fault-injection
// harness plugs into: an injectable filesystem (write/sync/rename errors,
// torn writes), a virtual clock, and a flaky net.Conn wrapper. Production
// code holds these seams with the pass-through implementations (OS
// filesystem, wall clock, raw connection) so the real paths are unchanged;
// the simulation suite (internal/sim) swaps in seeded injectors and replays
// the exact same fault sequence from a single integer.
//
// Determinism is the design constraint throughout: every fault decision is
// drawn from a stat.RNG stream derived from Plan.Seed and consumed in
// operation order, so two runs of the same single-threaded workload see
// byte-identical fault schedules. (Concurrent workloads serialize decisions
// on the injector's mutex; determinism then requires the caller to impose a
// deterministic operation order, which the sim runner does by driving
// ingestion from one goroutine.)
package fault

import (
	"errors"
	"fmt"
	"sync"

	"itscs/internal/stat"
)

// ErrInjected marks every error produced by the harness, so tests and
// invariant checks can tell an injected failure from a real one.
var ErrInjected = errors.New("fault: injected")

// Op classifies the filesystem operations the injector can fail.
type Op int

const (
	OpWrite Op = iota
	OpSync
	OpRename
	OpRemove
	OpTruncate
	OpOpen
	OpCreate
	opCount
)

func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpRename:
		return "rename"
	case OpRemove:
		return "remove"
	case OpTruncate:
		return "truncate"
	case OpOpen:
		return "open"
	case OpCreate:
		return "create"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Plan parameterizes one seeded fault schedule. Zero probabilities make the
// injector a pass-through; the zero value is therefore safe everywhere.
type Plan struct {
	// Seed drives every fault decision. Identical plans replay identical
	// fault schedules over identical operation sequences.
	Seed int64
	// PWriteErr, PSyncErr, PRenameErr, PRemoveErr, POpenErr are the
	// per-operation failure probabilities in [0,1).
	PWriteErr  float64
	PSyncErr   float64
	PRenameErr float64
	PRemoveErr float64
	POpenErr   float64
	// PTornWrite is the probability a failing write is torn: a seeded
	// prefix of the buffer reaches the file before the error, the partial
	// frame a crash mid-write leaves behind.
	PTornWrite float64
	// After suppresses all faults for the first After operations, letting a
	// scenario set up cleanly before the weather turns.
	After uint64
	// MaxFaults caps the total injected failures (0 = unlimited), so a
	// scenario can guarantee forward progress.
	MaxFaults int
}

// Injector makes seeded fault decisions. All methods are safe for
// concurrent use; decisions are consumed in the serialized operation order.
type Injector struct {
	mu     sync.Mutex
	plan   Plan
	rng    *stat.RNG
	ops    uint64
	faults int
	log    []Record
}

// Record is one injected fault, retained for reproducibility checks.
type Record struct {
	Op   Op
	Name string
	// Seq is the global operation counter at injection time.
	Seq uint64
	// Torn reports a torn write (prefix persisted before the error).
	Torn bool
}

// NewInjector returns an injector following the plan.
func NewInjector(plan Plan) *Injector {
	return &Injector{plan: plan, rng: stat.NewRNG(plan.Seed).Child("fault")}
}

// decide consumes one decision for op against name. It returns the error to
// inject (nil for a clean pass) and, for writes, how many bytes of an
// n-byte buffer should be persisted before failing (n on a clean pass).
func (in *Injector) decide(op Op, name string, n int) (error, int) {
	if in == nil {
		return nil, n
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	seq := in.ops
	in.ops++
	var p float64
	switch op {
	case OpWrite:
		p = in.plan.PWriteErr
	case OpSync:
		p = in.plan.PSyncErr
	case OpRename:
		p = in.plan.PRenameErr
	case OpRemove, OpTruncate:
		p = in.plan.PRemoveErr
	case OpOpen, OpCreate:
		p = in.plan.POpenErr
	}
	if p == 0 {
		return nil, n
	}
	// One uniform draw per fault-eligible operation keeps the stream
	// aligned regardless of which operations ultimately fail.
	hit := in.rng.Bool(p)
	if seq < in.plan.After || (in.plan.MaxFaults > 0 && in.faults >= in.plan.MaxFaults) {
		return nil, n
	}
	if !hit {
		return nil, n
	}
	in.faults++
	rec := Record{Op: op, Name: name, Seq: seq}
	keep := n
	if op == OpWrite && n > 0 && in.rng.Bool(in.plan.PTornWrite) {
		keep = in.rng.Intn(n) // persist a strict prefix: the torn write
		rec.Torn = true
	} else if op == OpWrite {
		keep = 0
	}
	in.log = append(in.log, rec)
	return fmt.Errorf("%w: %s %s (op %d)", ErrInjected, op, name, seq), keep
}

// Faults snapshots the injected-fault log, in injection order.
func (in *Injector) Faults() []Record {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]Record(nil), in.log...)
}

// Ops reports how many operations have consulted the injector.
func (in *Injector) Ops() uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.ops
}

package fault

import (
	"sync"
	"time"
)

// Clock abstracts time for components with timing behavior (the WAL's
// interval fsync ticker, the pipeline's latency accounting) so tests can
// drive them deterministically instead of sleeping.
type Clock interface {
	Now() time.Time
	Since(t time.Time) time.Duration
	NewTicker(d time.Duration) Ticker
}

// Ticker is the subset of time.Ticker the seams need.
type Ticker interface {
	C() <-chan time.Time
	Stop()
}

// RealClock returns the wall clock, the production default.
func RealClock() Clock { return realClock{} }

type realClock struct{}

func (realClock) Now() time.Time                   { return time.Now() }
func (realClock) Since(t time.Time) time.Duration  { return time.Since(t) }
func (realClock) NewTicker(d time.Duration) Ticker { return realTicker{time.NewTicker(d)} }

type realTicker struct{ t *time.Ticker }

func (t realTicker) C() <-chan time.Time { return t.t.C }
func (t realTicker) Stop()               { t.t.Stop() }

// VirtualClock is a manually advanced clock. Time moves only through
// Advance, which fires every ticker whose next tick falls within the step —
// a test controls exactly when interval work happens and never sleeps.
type VirtualClock struct {
	mu      sync.Mutex
	now     time.Time
	tickers []*virtualTicker
}

// NewVirtualClock starts a virtual clock at the given instant.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current virtual instant.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Since reports the virtual time elapsed since t.
func (c *VirtualClock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// NewTicker registers a ticker with the given period.
func (c *VirtualClock) NewTicker(d time.Duration) Ticker {
	if d <= 0 {
		d = time.Nanosecond
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &virtualTicker{clock: c, period: d, next: c.now.Add(d), ch: make(chan time.Time, 1)}
	c.tickers = append(c.tickers, t)
	return t
}

// Advance moves the clock forward by d, delivering due ticks in timestamp
// order. Tick delivery is non-blocking (like time.Ticker, a slow receiver
// coalesces ticks); Advance returns once the clock has moved, not once
// receivers have acted — callers observe effects, not deliveries.
func (c *VirtualClock) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for {
		// Find the earliest pending tick within the step.
		var due *virtualTicker
		for _, t := range c.tickers {
			if t.stopped || t.next.After(target) {
				continue
			}
			if due == nil || t.next.Before(due.next) {
				due = t
			}
		}
		if due == nil {
			break
		}
		c.now = due.next
		due.next = due.next.Add(due.period)
		select {
		case due.ch <- c.now:
		default:
		}
	}
	c.now = target
	c.mu.Unlock()
}

type virtualTicker struct {
	clock   *VirtualClock
	period  time.Duration
	next    time.Time
	ch      chan time.Time
	stopped bool
}

func (t *virtualTicker) C() <-chan time.Time { return t.ch }

func (t *virtualTicker) Stop() {
	t.clock.mu.Lock()
	t.stopped = true
	// Drop the ticker from the registry so long-lived clocks don't leak.
	ts := t.clock.tickers
	for j, other := range ts {
		if other == t {
			t.clock.tickers = append(ts[:j], ts[j+1:]...)
			break
		}
	}
	t.clock.mu.Unlock()
}

package corrupt

import (
	"math"
	"testing"

	"itscs/internal/mat"
)

// TestApplyEdgeShapes drives Apply across the degenerate shapes and ratio
// extremes a generator must survive: empty matrices, single cells, single
// columns, and corruption ratios near the validity boundary.
func TestApplyEdgeShapes(t *testing.T) {
	cases := []struct {
		name    string
		n, t    int
		missing float64
		faulty  float64
	}{
		{"empty", 0, 0, 0, 0},
		{"single-cell-clean", 1, 1, 0, 0},
		{"single-column", 5, 1, 0.2, 0.2},
		{"single-row", 1, 20, 0.25, 0.25},
		{"almost-all-faulty", 4, 25, 0, 0.9},
		{"almost-all-missing", 4, 25, 0.9, 0},
		{"boundary-sum", 3, 30, 0.49, 0.49},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			x := mat.Filled(tc.n, tc.t, 100)
			y := mat.Filled(tc.n, tc.t, -200)
			plan := DefaultPlan()
			plan.MissingRatio = tc.missing
			plan.FaultyRatio = tc.faulty
			res, err := Apply(plan, x, y)
			if err != nil {
				t.Fatal(err)
			}
			total := tc.n * tc.t
			wantMissing := int(tc.missing * float64(total))
			wantFaulty := int(tc.faulty * float64(total))
			var gotMissing, gotFaulty int
			for i := 0; i < tc.n; i++ {
				for j := 0; j < tc.t; j++ {
					e := res.Existence.At(i, j)
					f := res.Faulty.At(i, j)
					switch {
					case e == 0 && f == 1:
						t.Fatalf("cell (%d,%d) both missing and faulty", i, j)
					case e == 0:
						gotMissing++
						if res.SX.At(i, j) != 0 || res.SY.At(i, j) != 0 {
							t.Fatalf("missing cell (%d,%d) kept a value", i, j)
						}
					case f == 1:
						gotFaulty++
						for axis, d := range map[string]float64{
							"X": res.SX.At(i, j) - x.At(i, j),
							"Y": res.SY.At(i, j) - y.At(i, j),
						} {
							if ad := math.Abs(d); ad < plan.BiasMinMeters || ad > plan.BiasMaxMeters {
								t.Fatalf("faulty cell (%d,%d) %s bias %v outside [%v,%v]",
									i, j, axis, ad, plan.BiasMinMeters, plan.BiasMaxMeters)
							}
						}
					default:
						if res.SX.At(i, j) != x.At(i, j) || res.SY.At(i, j) != y.At(i, j) {
							t.Fatalf("clean cell (%d,%d) was altered", i, j)
						}
					}
				}
			}
			if gotMissing != wantMissing || gotFaulty != wantFaulty {
				t.Fatalf("corrupted %d missing / %d faulty, want %d / %d",
					gotMissing, gotFaulty, wantMissing, wantFaulty)
			}
		})
	}
}

// TestPlanValidationEdges sweeps the rejection boundary of Plan.Validate.
func TestPlanValidationEdges(t *testing.T) {
	base := DefaultPlan()
	cases := []struct {
		name   string
		mutate func(*Plan)
		ok     bool
	}{
		{"default", func(p *Plan) {}, true},
		{"negative-missing", func(p *Plan) { p.MissingRatio = -0.1 }, false},
		{"missing-is-one", func(p *Plan) { p.MissingRatio = 1 }, false},
		{"negative-faulty", func(p *Plan) { p.FaultyRatio = -0.1 }, false},
		{"sum-is-one", func(p *Plan) { p.MissingRatio, p.FaultyRatio = 0.5, 0.5 }, false},
		{"sum-just-under", func(p *Plan) { p.MissingRatio, p.FaultyRatio = 0.5, 0.499 }, true},
		{"zero-bias-min", func(p *Plan) { p.BiasMinMeters = 0 }, false},
		{"inverted-bias", func(p *Plan) { p.BiasMinMeters, p.BiasMaxMeters = 10, 5 }, false},
		{"point-bias", func(p *Plan) { p.BiasMinMeters, p.BiasMaxMeters = 7, 7 }, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := base
			tc.mutate(&p)
			if err := p.Validate(); (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

// TestApplyShapeMismatch rejects X/Y shape disagreements instead of
// corrupting out of bounds.
func TestApplyShapeMismatch(t *testing.T) {
	if _, err := Apply(DefaultPlan(), mat.New(2, 3), mat.New(3, 2)); err == nil {
		t.Fatal("mismatched shapes must be rejected")
	}
}

// Package corrupt injects the missing values and faulty data the paper's
// evaluation is driven by (§IV-A):
//
//   - the Existence Matrix E with a fraction α of zeros (missing values),
//   - the Faulty Matrix F with a fraction β of ones, applied as a large
//     random bias ε added to both coordinates of the selected cells,
//   - velocity corruption for the §IV-D study: a fraction γ of velocity
//     cells replaced by a uniform draw in [0, 2v] (±100 % error).
//
// A cell is never both missing and faulty: faulty cells are drawn from the
// cells that survive the missingness draw, matching the paper's generation
// S = X∘E + F∘[ε].
package corrupt

import (
	"fmt"
	"sort"

	"itscs/internal/mat"
	"itscs/internal/stat"
)

// Plan describes one corruption draw.
type Plan struct {
	// MissingRatio is α: the fraction of cells whose observations are lost.
	MissingRatio float64
	// FaultyRatio is β: the fraction of cells that carry a large bias.
	FaultyRatio float64
	// BiasMinMeters and BiasMaxMeters bound |ε| for faulty cells. The paper
	// notes faulty points are "typically at least kilometers away from the
	// normal data"; defaults follow that.
	BiasMinMeters float64
	BiasMaxMeters float64
	// Seed drives the deterministic draw.
	Seed int64
}

// DefaultPlan returns a plan with paper-calibrated bias magnitudes
// (kilometers-scale deviations) and no corruption ratios set.
func DefaultPlan() Plan {
	return Plan{
		BiasMinMeters: 2_000,
		BiasMaxMeters: 15_000,
		Seed:          1,
	}
}

// Validate reports plan errors.
func (p Plan) Validate() error {
	switch {
	case p.MissingRatio < 0 || p.MissingRatio >= 1:
		return fmt.Errorf("corrupt: missing ratio %v outside [0,1)", p.MissingRatio)
	case p.FaultyRatio < 0 || p.FaultyRatio >= 1:
		return fmt.Errorf("corrupt: faulty ratio %v outside [0,1)", p.FaultyRatio)
	case p.MissingRatio+p.FaultyRatio >= 1:
		return fmt.Errorf("corrupt: missing %v + faulty %v leave no clean data", p.MissingRatio, p.FaultyRatio)
	case p.BiasMinMeters <= 0 || p.BiasMaxMeters < p.BiasMinMeters:
		return fmt.Errorf("corrupt: bad bias bounds [%v,%v]", p.BiasMinMeters, p.BiasMaxMeters)
	}
	return nil
}

// Result bundles the corrupted view of a fleet.
type Result struct {
	// SX and SY are the Sensory Matrices: X∘E + F∘ε (faulty bias applied),
	// zeros at missing cells.
	SX, SY *mat.Dense
	// Existence is E: 1 where a report was received, 0 where missing.
	Existence *mat.Dense
	// Faulty is the ground-truth F: 1 where a bias was injected.
	Faulty *mat.Dense
}

// Apply draws missing and faulty cells over ground-truth coordinates and
// returns the corrupted sensory matrices together with the ground truth
// masks. X and Y must have identical shape.
func Apply(p Plan, x, y *mat.Dense) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n, t := x.Dims()
	yn, yt := y.Dims()
	if yn != n || yt != t {
		return nil, fmt.Errorf("corrupt: X %dx%d and Y %dx%d differ", n, t, yn, yt)
	}
	total := n * t
	rng := stat.NewRNG(p.Seed)

	// Choose missing cells, then faulty cells among the remainder, via one
	// permutation: the first nMissing indices go missing, the next nFaulty
	// become faulty. This matches the paper's generation where a cell is
	// missing or faulty, never both.
	nMissing := int(p.MissingRatio * float64(total))
	nFaulty := int(p.FaultyRatio * float64(total))
	perm := rng.Child("cells").Perm(total)

	res := &Result{
		SX:        x.Clone(),
		SY:        y.Clone(),
		Existence: mat.Ones(n, t),
		Faulty:    mat.New(n, t),
	}
	biasRNG := rng.Child("bias")
	for k, cell := range perm[:nMissing+nFaulty] {
		i, j := cell/t, cell%t
		if k < nMissing {
			res.Existence.Set(i, j, 0)
			res.SX.Set(i, j, 0)
			res.SY.Set(i, j, 0)
			continue
		}
		res.Faulty.Set(i, j, 1)
		res.SX.Add(i, j, drawBias(biasRNG, p))
		res.SY.Add(i, j, drawBias(biasRNG, p))
	}
	return res, nil
}

// drawBias samples ε: a kilometers-scale offset with random sign.
func drawBias(rng *stat.RNG, p Plan) float64 {
	return rng.Sign() * rng.Uniform(p.BiasMinMeters, p.BiasMaxMeters)
}

// ParticipantPlan describes corruption concentrated in specific
// participants rather than spread uniformly over cells: Rates[i] is the
// fraction of participant i's surviving (non-missing) cells that carry a
// bias. Participants absent from Rates stay clean. This is the generation
// model behind the reputation evaluation, where fault mass follows the
// device, not the cell.
type ParticipantPlan struct {
	// MissingRatio is α, drawn uniformly over all cells as in Plan.
	MissingRatio float64
	// Rates maps participant row → per-cell fault probability in [0,1).
	Rates map[int]float64
	// BiasMinMeters and BiasMaxMeters bound |ε| as in Plan.
	BiasMinMeters float64
	BiasMaxMeters float64
	// Seed drives the deterministic draw.
	Seed int64
}

// DefaultParticipantPlan mirrors DefaultPlan's paper-calibrated bias
// magnitudes with no participants selected.
func DefaultParticipantPlan() ParticipantPlan {
	return ParticipantPlan{BiasMinMeters: 2_000, BiasMaxMeters: 15_000, Seed: 1}
}

// Validate reports plan errors.
func (p ParticipantPlan) Validate() error {
	switch {
	case p.MissingRatio < 0 || p.MissingRatio >= 1:
		return fmt.Errorf("corrupt: missing ratio %v outside [0,1)", p.MissingRatio)
	case p.BiasMinMeters <= 0 || p.BiasMaxMeters < p.BiasMinMeters:
		return fmt.Errorf("corrupt: bad bias bounds [%v,%v]", p.BiasMinMeters, p.BiasMaxMeters)
	}
	for i, r := range p.Rates {
		if i < 0 {
			return fmt.Errorf("corrupt: negative participant row %d", i)
		}
		if r < 0 || r >= 1 {
			return fmt.Errorf("corrupt: participant %d fault rate %v outside [0,1)", i, r)
		}
	}
	return nil
}

// ApplyParticipants draws missingness uniformly, then injects faults into
// the selected participants' rows at their individual rates. The returned
// Faulty mask is the per-cell ground truth; summed per row it gives each
// participant's realized fault count.
func ApplyParticipants(p ParticipantPlan, x, y *mat.Dense) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n, t := x.Dims()
	yn, yt := y.Dims()
	if yn != n || yt != t {
		return nil, fmt.Errorf("corrupt: X %dx%d and Y %dx%d differ", n, t, yn, yt)
	}
	for i := range p.Rates {
		if i >= n {
			return nil, fmt.Errorf("corrupt: participant row %d outside fleet of %d", i, n)
		}
	}
	rng := stat.NewRNG(p.Seed)
	res := &Result{
		SX:        x.Clone(),
		SY:        y.Clone(),
		Existence: mat.Ones(n, t),
		Faulty:    mat.New(n, t),
	}
	total := n * t
	nMissing := int(p.MissingRatio * float64(total))
	for _, cell := range rng.Child("cells").Perm(total)[:nMissing] {
		i, j := cell/t, cell%t
		res.Existence.Set(i, j, 0)
		res.SX.Set(i, j, 0)
		res.SY.Set(i, j, 0)
	}
	biasRNG := rng.Child("bias")
	// Rows are corrupted in ascending order so the draw is deterministic
	// regardless of map iteration.
	rows := make([]int, 0, len(p.Rates))
	for i := range p.Rates {
		rows = append(rows, i)
	}
	sort.Ints(rows)
	for _, i := range rows {
		rowRNG := rng.Child(fmt.Sprintf("row-%d", i))
		var alive []int
		for j := 0; j < t; j++ {
			if res.Existence.At(i, j) == 1 {
				alive = append(alive, j)
			}
		}
		nBad := int(p.Rates[i] * float64(len(alive)))
		for _, k := range rowRNG.Perm(len(alive))[:nBad] {
			j := alive[k]
			res.Faulty.Set(i, j, 1)
			res.SX.Add(i, j, drawBias(biasRNG, Plan{BiasMinMeters: p.BiasMinMeters, BiasMaxMeters: p.BiasMaxMeters}))
			res.SY.Add(i, j, drawBias(biasRNG, Plan{BiasMinMeters: p.BiasMinMeters, BiasMaxMeters: p.BiasMaxMeters}))
		}
	}
	return res, nil
}

// CorruptVelocity returns copies of vx, vy where a fraction gamma of cells
// (chosen jointly for both components) are replaced by a uniform draw in
// [0, 2v] — the ±100 % velocity error of the paper's §IV-D robustness study.
// It returns an error when gamma is outside [0,1) or shapes differ.
func CorruptVelocity(vx, vy *mat.Dense, gamma float64, seed int64) (*mat.Dense, *mat.Dense, error) {
	if gamma < 0 || gamma >= 1 {
		return nil, nil, fmt.Errorf("corrupt: velocity fault ratio %v outside [0,1)", gamma)
	}
	n, t := vx.Dims()
	yn, yt := vy.Dims()
	if yn != n || yt != t {
		return nil, nil, fmt.Errorf("corrupt: VX %dx%d and VY %dx%d differ", n, t, yn, yt)
	}
	outX, outY := vx.Clone(), vy.Clone()
	rng := stat.NewRNG(seed).Child("velocity")
	total := n * t
	nBad := int(gamma * float64(total))
	for _, cell := range rng.Perm(total)[:nBad] {
		i, j := cell/t, cell%t
		outX.Set(i, j, rng.Uniform(0, 2)*outX.At(i, j))
		outY.Set(i, j, rng.Uniform(0, 2)*outY.At(i, j))
	}
	return outX, outY, nil
}

// Ratios reports the realized missing and faulty fractions of a result,
// useful for sanity-checking draws in tests and reports.
func (r *Result) Ratios() (missing, faulty float64) {
	n, t := r.Existence.Dims()
	total := float64(n * t)
	if total == 0 {
		return 0, 0
	}
	missing = float64(r.Existence.CountIf(func(v float64) bool { return v == 0 })) / total
	faulty = float64(r.Faulty.CountIf(func(v float64) bool { return v == 1 })) / total
	return missing, faulty
}

package corrupt

import (
	"math"
	"testing"
	"testing/quick"

	"itscs/internal/mat"
	"itscs/internal/stat"
)

func groundTruth(n, t int) (*mat.Dense, *mat.Dense) {
	x := mat.New(n, t)
	y := mat.New(n, t)
	rng := stat.NewRNG(77)
	for i := 0; i < n; i++ {
		for j := 0; j < t; j++ {
			x.Set(i, j, rng.Uniform(0, 100_000))
			y.Set(i, j, rng.Uniform(0, 100_000))
		}
	}
	return x, y
}

func plan(alpha, beta float64) Plan {
	p := DefaultPlan()
	p.MissingRatio = alpha
	p.FaultyRatio = beta
	return p
}

func TestApplyRatios(t *testing.T) {
	x, y := groundTruth(40, 50)
	res, err := Apply(plan(0.2, 0.3), x, y)
	if err != nil {
		t.Fatal(err)
	}
	missing, faulty := res.Ratios()
	if math.Abs(missing-0.2) > 0.01 {
		t.Fatalf("missing ratio = %v, want ~0.2", missing)
	}
	if math.Abs(faulty-0.3) > 0.01 {
		t.Fatalf("faulty ratio = %v, want ~0.3", faulty)
	}
}

func TestApplyDisjointMissingAndFaulty(t *testing.T) {
	x, y := groundTruth(30, 30)
	res, err := Apply(plan(0.4, 0.4), x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if res.Existence.At(i, j) == 0 && res.Faulty.At(i, j) == 1 {
				t.Fatalf("cell (%d,%d) both missing and faulty", i, j)
			}
		}
	}
}

func TestApplyMissingCellsZeroed(t *testing.T) {
	x, y := groundTruth(20, 20)
	res, err := Apply(plan(0.3, 0), x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if res.Existence.At(i, j) == 0 {
				if res.SX.At(i, j) != 0 || res.SY.At(i, j) != 0 {
					t.Fatalf("missing cell (%d,%d) not zeroed", i, j)
				}
			} else if res.SX.At(i, j) != x.At(i, j) {
				t.Fatalf("clean cell (%d,%d) modified", i, j)
			}
		}
	}
}

func TestApplyBiasMagnitude(t *testing.T) {
	x, y := groundTruth(25, 25)
	p := plan(0, 0.3)
	res, err := Apply(p, x, y)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		for j := 0; j < 25; j++ {
			devX := math.Abs(res.SX.At(i, j) - x.At(i, j))
			devY := math.Abs(res.SY.At(i, j) - y.At(i, j))
			if res.Faulty.At(i, j) == 1 {
				if devX < p.BiasMinMeters || devX > p.BiasMaxMeters {
					t.Fatalf("X bias %v outside [%v,%v]", devX, p.BiasMinMeters, p.BiasMaxMeters)
				}
				if devY < p.BiasMinMeters || devY > p.BiasMaxMeters {
					t.Fatalf("Y bias %v outside [%v,%v]", devY, p.BiasMinMeters, p.BiasMaxMeters)
				}
			} else if devX != 0 || devY != 0 {
				t.Fatalf("clean cell (%d,%d) has bias", i, j)
			}
		}
	}
}

func TestApplyDeterministic(t *testing.T) {
	x, y := groundTruth(15, 15)
	a, err := Apply(plan(0.2, 0.2), x, y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Apply(plan(0.2, 0.2), x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !a.SX.Equal(b.SX, 0) || !a.Existence.Equal(b.Existence, 0) || !a.Faulty.Equal(b.Faulty, 0) {
		t.Fatal("same seed must reproduce corruption exactly")
	}
	p2 := plan(0.2, 0.2)
	p2.Seed = 42
	c, err := Apply(p2, x, y)
	if err != nil {
		t.Fatal(err)
	}
	if a.SX.Equal(c.SX, 0) {
		t.Fatal("different seed should change the draw")
	}
}

func TestApplyDoesNotMutateInput(t *testing.T) {
	x, y := groundTruth(10, 10)
	xc, yc := x.Clone(), y.Clone()
	if _, err := Apply(plan(0.3, 0.3), x, y); err != nil {
		t.Fatal(err)
	}
	if !x.Equal(xc, 0) || !y.Equal(yc, 0) {
		t.Fatal("Apply must not mutate ground truth")
	}
}

func TestApplyValidation(t *testing.T) {
	x, y := groundTruth(5, 5)
	bad := []Plan{
		plan(-0.1, 0),
		plan(0, -0.1),
		plan(1.0, 0),
		plan(0, 1.0),
		plan(0.6, 0.6), // no clean data left
		{MissingRatio: 0.1, FaultyRatio: 0.1, BiasMinMeters: 0, BiasMaxMeters: 10, Seed: 1},
		{MissingRatio: 0.1, FaultyRatio: 0.1, BiasMinMeters: 10, BiasMaxMeters: 5, Seed: 1},
	}
	for i, p := range bad {
		if _, err := Apply(p, x, y); err == nil {
			t.Fatalf("plan %d should be rejected", i)
		}
	}
	if _, err := Apply(plan(0.1, 0.1), x, mat.New(3, 3)); err == nil {
		t.Fatal("mismatched shapes should be rejected")
	}
}

func TestCorruptVelocity(t *testing.T) {
	vx := mat.Filled(20, 20, 10)
	vy := mat.Filled(20, 20, -4)
	ox, oy, err := CorruptVelocity(vx, vy, 0.25, 7)
	if err != nil {
		t.Fatal(err)
	}
	changed := 0
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			cx, cy := ox.At(i, j), oy.At(i, j)
			if cx != 10 || cy != -4 {
				changed++
				// Replacement must lie in [0, 2v] for each component.
				if cx < 0 || cx > 20 {
					t.Fatalf("vx replacement %v outside [0,20]", cx)
				}
				if cy > 0 || cy < -8 {
					t.Fatalf("vy replacement %v outside [-8,0]", cy)
				}
			}
		}
	}
	want := int(0.25 * 400)
	if changed < want-20 || changed > want+20 {
		t.Fatalf("changed %d cells, want ~%d", changed, want)
	}
	// Originals untouched.
	if vx.At(0, 0) != 10 || vy.At(0, 0) != -4 {
		t.Fatal("CorruptVelocity must not mutate inputs")
	}
}

func TestCorruptVelocityValidation(t *testing.T) {
	vx := mat.New(3, 3)
	if _, _, err := CorruptVelocity(vx, vx, -0.1, 1); err == nil {
		t.Fatal("negative gamma should be rejected")
	}
	if _, _, err := CorruptVelocity(vx, vx, 1.0, 1); err == nil {
		t.Fatal("gamma = 1 should be rejected")
	}
	if _, _, err := CorruptVelocity(vx, mat.New(2, 2), 0.1, 1); err == nil {
		t.Fatal("shape mismatch should be rejected")
	}
	ox, oy, err := CorruptVelocity(vx, vx, 0, 1)
	if err != nil || !ox.Equal(vx, 0) || !oy.Equal(vx, 0) {
		t.Fatal("gamma = 0 must be a no-op copy")
	}
}

func TestRatiosEmptyMatrix(t *testing.T) {
	r := &Result{Existence: mat.New(0, 0), Faulty: mat.New(0, 0)}
	m, f := r.Ratios()
	if m != 0 || f != 0 {
		t.Fatal("empty result must report zero ratios")
	}
}

// Property: for any valid (α, β) the realized ratios match the request
// within one cell of rounding, and missing∩faulty = ∅.
func TestPropertyApplyRespectsPlan(t *testing.T) {
	x, y := groundTruth(18, 22)
	total := float64(18 * 22)
	f := func(seed int64, a, b uint8) bool {
		alpha := float64(a%45) / 100 // 0 .. 0.44
		beta := float64(b%45) / 100
		p := plan(alpha, beta)
		p.Seed = seed
		res, err := Apply(p, x, y)
		if err != nil {
			return false
		}
		missing, faulty := res.Ratios()
		if math.Abs(missing-alpha) > 1.5/total+0.005 {
			return false
		}
		if math.Abs(faulty-beta) > 0.01 {
			return false
		}
		for i := 0; i < 18; i++ {
			for j := 0; j < 22; j++ {
				if res.Existence.At(i, j) == 0 && res.Faulty.At(i, j) == 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation (§IV). Each benchmark regenerates its figure's rows and
// reports the headline values as custom benchmark metrics, logging the
// full series with -v.
//
// By default the benches run at the reduced QuickScale (60×120), which
// preserves the paper's qualitative shapes. Set ITSCS_BENCH_SCALE=paper
// to run the full 158×240 evaluation (slow on a single core).
//
//	go test -bench=. -benchmem              # quick scale
//	ITSCS_BENCH_SCALE=paper go test -bench=Fig5 -v
package itscs_test

import (
	"os"
	"testing"

	"itscs/internal/experiment"
)

// benchConfig resolves the benchmark scale from the environment.
func benchConfig(b *testing.B) experiment.Config {
	b.Helper()
	scale := experiment.QuickScale
	if os.Getenv("ITSCS_BENCH_SCALE") == "paper" {
		scale = experiment.PaperScale
	}
	return experiment.DefaultConfig(scale)
}

// BenchmarkFig1_CorruptionStats regenerates the Fig. 1 data-quality
// illustration: corruption realized ratios and step statistics.
func BenchmarkFig1_CorruptionStats(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		stats, err := experiment.Fig1(cfg, 0.11, 0.28)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(stats.RealizedMissing, "missing_ratio")
			b.ReportMetric(stats.RealizedFaulty, "faulty_ratio")
			b.ReportMetric(stats.MeanBiasMeters, "mean_bias_m")
			b.Logf("clean step p95 %.0f m, corrupted max step %.0f m",
				stats.CleanStepP95, stats.MaxStepMeters)
		}
	}
}

// BenchmarkFig4a_SingularValueCDF regenerates the low-rank analysis.
// Paper shape: the top ~9-11%% of singular values carry 95%% of the energy.
func BenchmarkFig4a_SingularValueCDF(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		points, err := experiment.Fig4a(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var fracX, fracY float64
			for _, p := range points {
				if fracX == 0 && p.EnergyX >= 0.95 {
					fracX = p.NormalizedIndex
				}
				if fracY == 0 && p.EnergyY >= 0.95 {
					fracY = p.NormalizedIndex
				}
			}
			b.ReportMetric(fracX*100, "pct_sv_for_95pct_energy_X")
			b.ReportMetric(fracY*100, "pct_sv_for_95pct_energy_Y")
		}
	}
}

// BenchmarkFig4b_TemporalStability regenerates the temporal-stability CDF
// comparison. Paper shape: the 95th percentile drops from ~410 m (raw) to
// ~210 m (velocity-improved).
func BenchmarkFig4b_TemporalStability(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiment.Fig4b(cfg, []float64{0.5, 0.9, 0.95, 0.99})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, r := range rows {
				b.Logf("q%.2f: |Δx| %.0f m  |Δy| %.0f m  |Δvx| %.0f m  |Δvy| %.0f m",
					r.Quantile, r.DX, r.DY, r.DVX, r.DVY)
				if r.Quantile == 0.95 {
					b.ReportMetric(r.DX, "raw_p95_m")
					b.ReportMetric(r.DVX, "velocity_p95_m")
				}
			}
		}
	}
}

// BenchmarkFig5_DetectionPR regenerates the detection study. Paper shape:
// TMM's precision and recall degrade as alpha/beta grow while every
// I(TS,CS) variant stays above 95% even at alpha=beta=40%.
func BenchmarkFig5_DetectionPR(b *testing.B) {
	cfg := benchConfig(b)
	alphas := []float64{0, 0.2, 0.4}
	betas := []float64{0.1, 0.2, 0.3, 0.4}
	for i := 0; i < b.N; i++ {
		points, err := experiment.Fig5(cfg, alphas, betas)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			reportFig5(b, points)
		}
	}
}

func reportFig5(b *testing.B, points []experiment.DetectionPoint) {
	b.Helper()
	worst := map[experiment.Method]float64{}
	for _, p := range points {
		b.Logf("alpha=%.2f beta=%.2f %-16s P=%.4f R=%.4f",
			p.Alpha, p.Beta, p.Method, p.Precision, p.Recall)
		v := p.Precision
		if p.Recall < v {
			v = p.Recall
		}
		if cur, ok := worst[p.Method]; !ok || v < cur {
			worst[p.Method] = v
		}
	}
	b.ReportMetric(worst[experiment.MethodTMM], "worst_PR_TMM")
	b.ReportMetric(worst[experiment.MethodITSCS], "worst_PR_ITSCS")
}

// BenchmarkFig6_ReconstructionMAE regenerates the reconstruction study.
// Paper shape: plain CS exceeds 1200 m at beta=40% while I(TS,CS) stays
// around 200 m; the w/o-VT variant is ~2x the full one; w/o V ~10-18%
// worse than full.
func BenchmarkFig6_ReconstructionMAE(b *testing.B) {
	cfg := benchConfig(b)
	alphas := []float64{0.1, 0.2, 0.3}
	betas := []float64{0, 0.1, 0.2, 0.3, 0.4}
	for i := 0; i < b.N; i++ {
		points, err := experiment.Fig6(cfg, alphas, betas)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var worstCS, worstFull float64
			for _, p := range points {
				b.Logf("alpha=%.2f beta=%.2f %-16s MAE=%.1f m", p.Alpha, p.Beta, p.Method, p.MAE)
				switch p.Method {
				case experiment.MethodPlainCS:
					if p.MAE > worstCS {
						worstCS = p.MAE
					}
				case experiment.MethodITSCS:
					if p.MAE > worstFull {
						worstFull = p.MAE
					}
				}
			}
			b.ReportMetric(worstCS, "worst_MAE_plainCS_m")
			b.ReportMetric(worstFull, "worst_MAE_ITSCS_m")
		}
	}
}

// BenchmarkFig7_FaultyVelocity regenerates the velocity-robustness study.
// Paper shape: 20% faulty velocity is indistinguishable from clean, 40%
// only slightly worse, while dropping velocity costs visibly more.
func BenchmarkFig7_FaultyVelocity(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		points, err := experiment.Fig7(cfg,
			[]float64{0.2, 0.4},
			[]float64{0.2, 0.4},
			[]float64{0, 0.2, 0.4})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, p := range points {
				b.Logf("alpha=%.2f beta=%.2f gamma=%.2f %-16s MAE=%.1f m",
					p.Alpha, p.Beta, p.Gamma, p.Method, p.MAE)
			}
		}
	}
}

// BenchmarkFig8_Convergence regenerates the convergence study. Paper
// shape: the big improvement lands between iterations 1 and 2, and the
// loop stabilizes within ~4 iterations even at alpha=beta=40%.
func BenchmarkFig8_Convergence(b *testing.B) {
	cfg := benchConfig(b)
	for i := 0; i < b.N; i++ {
		points, err := experiment.Fig8(cfg, []struct{ Alpha, Beta float64 }{
			{0.2, 0.2}, {0.4, 0.4},
		})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			var maxIter float64
			for _, p := range points {
				b.Logf("alpha=%.2f beta=%.2f iter=%d P=%.4f MAE=%.1f changed=%d",
					p.Alpha, p.Beta, p.Iteration, p.Precision, p.MAE, p.Changed)
				if float64(p.Iteration) > maxIter {
					maxIter = float64(p.Iteration)
				}
			}
			b.ReportMetric(maxIter, "iterations_to_converge")
		}
	}
}
